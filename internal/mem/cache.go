// Package mem implements the memory-system substrate of the AMuLeT-Go
// simulator: set-associative caches with LRU replacement, miss-status
// handling registers (MSHRs), a data TLB, a line-fill buffer, and the
// hierarchy glue (latencies, pending fills, split requests). These are the
// structures the paper's leaks contend on, and their sizes are plain
// configuration so that leakage amplification (§3.4) needs no code changes.
package mem

import (
	"fmt"
	"slices"
)

// CacheConfig describes one cache array.
type CacheConfig struct {
	Sets     int // number of sets, power of two
	Ways     int // associativity
	LineSize int // bytes per line, power of two
}

// Validate reports configuration problems.
func (c CacheConfig) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("mem: cache sets must be a power of two, got %d", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("mem: cache ways must be positive, got %d", c.Ways)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("mem: line size must be a power of two, got %d", c.LineSize)
	}
	return nil
}

// SizeBytes returns the cache capacity in bytes.
func (c CacheConfig) SizeBytes() int { return c.Sets * c.Ways * c.LineSize }

// cacheLine is one way of one set. key encodes validity and the tag in a
// single word — addr+1 for a valid line, 0 for an invalid one — so the way
// scan of a lookup is one comparison per way over a compact 16-byte entry.
type cacheLine struct {
	key     uint64 // line address + 1, or 0 when invalid
	lastUse uint64 // LRU timestamp
}

func (l cacheLine) valid() bool  { return l.key != 0 }
func (l cacheLine) addr() uint64 { return l.key - 1 }

// Cache is a set-associative cache with true-LRU replacement. It tracks
// tags only: data contents live in the architectural memory image, which is
// all the micro-architectural traces need. The ways of all sets live in one
// flat array (set s occupies lines[s*Ways : (s+1)*Ways]), so lookups walk
// contiguous memory and checkpointing a cache is a single copy.
type Cache struct {
	cfg     CacheConfig
	lines   []cacheLine // Sets*Ways entries, set-major
	useTick uint64

	// Geometry derived at construction: LineSize and Sets are powers of
	// two, so indexing is a shift and a mask instead of runtime divisions
	// on the hottest lookup path.
	lineShift uint
	setMask   uint64
	lineMask  uint64
}

// NewCache builds a cache. It panics on invalid configuration: cache
// geometry is validated at simulator construction.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for 1<<shift != cfg.LineSize {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		lines:     make([]cacheLine, cfg.Sets*cfg.Ways),
		lineShift: shift,
		setMask:   uint64(cfg.Sets - 1),
		lineMask:  ^(uint64(cfg.LineSize) - 1),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr & c.lineMask
}

// SetIndex returns the set index for addr.
func (c *Cache) SetIndex(addr uint64) int {
	return int((addr >> c.lineShift) & c.setMask)
}

// setBase returns the index of the first way of the set containing addr.
func (c *Cache) setBase(addr uint64) int {
	return c.SetIndex(addr) * c.cfg.Ways
}

// find returns the flat line index holding addr.
func (c *Cache) find(addr uint64) (idx int, ok bool) {
	key := c.LineAddr(addr) + 1
	base := c.setBase(addr)
	lines := c.lines[base : base+c.cfg.Ways]
	for w := range lines {
		if lines[w].key == key {
			return base + w, true
		}
	}
	return 0, false
}

// Contains reports whether the line holding addr is present, without
// updating replacement state.
func (c *Cache) Contains(addr uint64) bool {
	_, ok := c.find(addr)
	return ok
}

// Touch looks up addr and, on a hit, updates the LRU state. It returns
// whether the access hit.
func (c *Cache) Touch(addr uint64) bool {
	idx, ok := c.find(addr)
	if !ok {
		return false
	}
	c.useTick++
	c.lines[idx].lastUse = c.useTick
	return true
}

// SetFull reports whether the set containing addr has no invalid way.
func (c *Cache) SetFull(addr uint64) bool {
	base := c.setBase(addr)
	for _, ln := range c.lines[base : base+c.cfg.Ways] {
		if !ln.valid() {
			return false
		}
	}
	return true
}

// victimWay returns the way Install would replace in set (an invalid way if
// one exists, otherwise the LRU way).
func victimWay(set []cacheLine) int {
	lru, lruWay := ^uint64(0), 0
	for w := range set {
		if !set[w].valid() {
			return w
		}
		if set[w].lastUse < lru {
			lru = set[w].lastUse
			lruWay = w
		}
	}
	return lruWay
}

// ProbeVictim returns the address Install(addr) would evict, if any,
// without side effects.
func (c *Cache) ProbeVictim(addr uint64) (victim uint64, wouldEvict bool) {
	if c.Contains(addr) {
		return 0, false
	}
	base := c.setBase(addr)
	set := c.lines[base : base+c.cfg.Ways]
	w := victimWay(set)
	if set[w].valid() {
		return set[w].addr(), true
	}
	return 0, false
}

// Install brings the line holding addr into the cache, evicting the LRU
// line if the set is full. If the line is already present it only refreshes
// LRU state. It returns the evicted line address, if any.
func (c *Cache) Install(addr uint64) (victim uint64, evicted bool) {
	if c.Touch(addr) {
		return 0, false
	}
	base := c.setBase(addr)
	set := c.lines[base : base+c.cfg.Ways]
	w := victimWay(set)
	if set[w].valid() {
		victim, evicted = set[w].addr(), true
	}
	c.useTick++
	set[w] = cacheLine{key: c.LineAddr(addr) + 1, lastUse: c.useTick}
	return victim, evicted
}

// EvictVictim performs only the replacement half of a miss: it evicts the
// line that Install(addr) would have replaced, without installing addr.
// This reproduces InvisiSpec's UV1 implementation bug, where a speculative
// load miss on a full set triggers an L1 replacement even though the
// speculative line itself stays invisible. It returns the evicted address.
func (c *Cache) EvictVictim(addr uint64) (victim uint64, evicted bool) {
	if c.Contains(addr) {
		return 0, false
	}
	base := c.setBase(addr)
	set := c.lines[base : base+c.cfg.Ways]
	w := victimWay(set)
	if !set[w].valid() {
		return 0, false
	}
	victim = set[w].addr()
	set[w] = cacheLine{}
	return victim, true
}

// Invalidate removes the line holding addr. It reports whether a line was
// removed.
func (c *Cache) Invalidate(addr uint64) bool {
	idx, ok := c.find(addr)
	if !ok {
		return false
	}
	c.lines[idx] = cacheLine{}
	return true
}

// InvalidateAll clears the whole cache (the simulator-hook reset used for
// CleanupSpec and SpecLFB campaigns).
func (c *Cache) InvalidateAll() {
	clear(c.lines)
	c.useTick = 0
}

// Prime fills every way of every set with the address returned by addrFor,
// the cache-initialization strategy of AMuLeT-Opt: starting from fully
// occupied sets makes evictions observable in the final snapshot.
func (c *Cache) Prime(addrFor func(set, way int) uint64) {
	for s := 0; s < c.cfg.Sets; s++ {
		for w := 0; w < c.cfg.Ways; w++ {
			c.useTick++
			c.lines[s*c.cfg.Ways+w] = cacheLine{key: c.LineAddr(addrFor(s, w)) + 1, lastUse: c.useTick}
		}
	}
}

// Snapshot returns the sorted addresses of all valid lines: the cache part
// of a micro-architectural trace.
func (c *Cache) Snapshot() []uint64 {
	return c.SnapshotInto(nil)
}

// SnapshotInto appends the sorted valid line addresses to buf (usually
// buf[:0] of a reused trace buffer) and returns the extended slice, so the
// steady-state trace-extraction path allocates nothing.
func (c *Cache) SnapshotInto(buf []uint64) []uint64 {
	start := len(buf)
	for i := range c.lines {
		if c.lines[i].valid() {
			buf = append(buf, c.lines[i].addr())
		}
	}
	slices.Sort(buf[start:])
	return buf
}

// ValidCount returns the number of valid lines.
func (c *Cache) ValidCount() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid() {
			n++
		}
	}
	return n
}

// CacheState is an opaque copy of a cache's content, used to replay test
// cases from an identical micro-architectural context during violation
// validation.
type CacheState struct {
	cfg     CacheConfig
	lines   []cacheLine
	useTick uint64
}

// Save captures the full tag state.
func (c *Cache) Save() *CacheState {
	st := &CacheState{}
	c.SaveInto(st)
	return st
}

// SaveInto captures the full tag state into st, reusing st's buffers. The
// validation replay path saves a context per µarch-trace mismatch, so the
// checkpoint buffer is recycled rather than reallocated.
func (c *Cache) SaveInto(st *CacheState) {
	st.cfg = c.cfg
	st.lines = append(st.lines[:0], c.lines...)
	st.useTick = c.useTick
}

// Restore rewinds the cache to a previously saved state. It panics if the
// state came from a cache with different geometry.
func (c *Cache) Restore(st *CacheState) {
	if st.cfg != c.cfg {
		panic("mem: CacheState geometry mismatch")
	}
	copy(c.lines, st.lines)
	c.useTick = st.useTick
}
