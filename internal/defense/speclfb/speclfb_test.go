package speclfb_test

import (
	"testing"

	"github.com/sith-lab/amulet-go/internal/defense/speclfb"
	"github.com/sith-lab/amulet-go/internal/isa"
	"github.com/sith-lab/amulet-go/internal/testgadget"
	"github.com/sith-lab/amulet-go/internal/uarch"
)

func newCore(cfg speclfb.Config) *uarch.Core {
	return uarch.NewCore(uarch.DefaultConfig(), speclfb.New(cfg))
}

// TestUV6SingleSpecLoadLeaks reproduces the paper's SpecLFB finding
// (Figure 8): the first speculative load in the LSQ is marked safe by the
// implementation's undocumented optimization, so a single-load Spectre-v1
// gadget with a register secret installs a secret-dependent line.
func TestUV6SingleSpecLoadLeaks(t *testing.T) {
	sb := isa.Sandbox{Pages: 1}
	prog := testgadget.SpectreV1RegSecret(120)
	inA := testgadget.BoundsInput(sb)
	inA.Regs[9] = 0x100
	inB := testgadget.BoundsInput(sb)
	inB.Regs[9] = 0x900

	core := newCore(speclfb.Config{})
	snapA := testgadget.Run(core, prog, sb, inA, testgadget.PrimeInvalidate)
	snapB := testgadget.Run(core, prog, sb, inB, testgadget.PrimeInvalidate)

	if !snapA.HasLine(testgadget.SandboxAddr(0x100)) {
		t.Errorf("input A: unprotected first spec load did not install 0x100; L1D=%#x", snapA.L1D)
	}
	if snapA.EqualCaches(snapB) {
		t.Errorf("expected UV6 leak (differing caches), both=%#x", snapA.L1D)
	}
}

// TestUV6PatchProtects verifies that removing the first-load exemption
// restores protection: the squashed load's line never becomes visible.
func TestUV6PatchProtects(t *testing.T) {
	sb := isa.Sandbox{Pages: 1}
	prog := testgadget.SpectreV1RegSecret(120)
	inA := testgadget.BoundsInput(sb)
	inA.Regs[9] = 0x100
	inB := testgadget.BoundsInput(sb)
	inB.Regs[9] = 0x900

	core := newCore(speclfb.Config{PatchUV6: true})
	snapA := testgadget.Run(core, prog, sb, inA, testgadget.PrimeInvalidate)
	snapB := testgadget.Run(core, prog, sb, inB, testgadget.PrimeInvalidate)

	if snapA.HasLine(testgadget.SandboxAddr(0x100)) {
		t.Errorf("input A: squashed protected load leaked line 0x100; L1D=%#x", snapA.L1D)
	}
	if !snapA.EqualCaches(snapB) {
		t.Errorf("patched SpecLFB still leaks:\nA=%#x\nB=%#x", snapA.L1D, snapB.L1D)
	}
}

// TestSecondSpecLoadProtected verifies that in the *unpatched*
// implementation the classic two-load gadget does NOT leak: the secret-
// dependent load is not the first speculative load, so it is parked in the
// LFB and dropped at squash. This is why the paper's SpecLFB violations
// all look like Figure 8 (secret in a register, one speculative load).
func TestSecondSpecLoadProtected(t *testing.T) {
	sb := isa.Sandbox{Pages: 1}
	prog := testgadget.SpectreV1MemSecret(140, false)
	mk := func(secret uint64) *isa.Input {
		in := testgadget.BoundsInput(sb)
		in.Regs[4] = 64
		for k := 0; k < 8; k++ {
			in.Mem[64+k] = byte(secret >> (8 * k))
		}
		return in
	}
	inA, inB := mk(0x140), mk(0xa40)

	core := newCore(speclfb.Config{})
	snapA := testgadget.Run(core, prog, sb, inA, testgadget.PrimeInvalidate)
	snapB := testgadget.Run(core, prog, sb, inB, testgadget.PrimeInvalidate)

	if snapA.HasLine(testgadget.SandboxAddr(0x140)) {
		t.Errorf("input A: protected second spec load leaked; L1D=%#x", snapA.L1D)
	}
	if !snapA.EqualCaches(snapB) {
		t.Errorf("two-load gadget should not leak on SpecLFB:\nA=%#x\nB=%#x", snapA.L1D, snapB.L1D)
	}
}

// TestSafeLoadsCommitNormally verifies that a correctly-speculated load
// staged in the LFB is released into the cache when it commits.
func TestSafeLoadsCommitNormally(t *testing.T) {
	sb := isa.Sandbox{Pages: 1}
	// Branch is architecturally not-taken and predicted not-taken (cold
	// counters): loads after it are speculative until it resolves, then
	// commit and must become visible.
	prog := &isa.Program{NumBlocks: 2}
	prog.Insts = append(prog.Insts,
		isa.Load(1, 0, 0, 8),      // slow: keeps the branch unresolved
		isa.CmpImm(1, 5),          // R1=1 -> NE -> B.EQ not taken
		isa.Branch(isa.CondEQ, 5), // correctly predicted not-taken
		isa.Load(2, 9, 0, 8),      // speculative, then safe; must install
		isa.Nop(),
	)
	for i := 0; i < 150; i++ {
		prog.Insts = append(prog.Insts, isa.ALUImm(isa.OpAdd, 12, 12, 1))
	}
	in := testgadget.BoundsInput(sb)
	in.Regs[9] = 0x500

	core := newCore(speclfb.Config{PatchUV6: true})
	snap := testgadget.Run(core, prog, sb, in, testgadget.PrimeInvalidate)
	if !snap.HasLine(testgadget.SandboxAddr(0x500)) {
		t.Errorf("committed speculative load's line 0x500 missing; L1D=%#x", snap.L1D)
	}
}
