package experiments

import (
	"fmt"
	"strings"

	"github.com/sith-lab/amulet-go/internal/analysis"
	"github.com/sith-lab/amulet-go/internal/executor"
	"github.com/sith-lab/amulet-go/internal/fuzzer"
)

// Table4Result carries the rendered table plus the per-defense example
// violation reports (the material of the paper's Figures 4, 6, 8, 9 and
// Tables 7, 9, 10).
type Table4Result struct {
	Table   *Table
	Reports map[string]*analysis.Report // defense name -> first analyzed violation
}

// Table4 reproduces the paper's Table 4: the headline campaign over the
// baseline and the four countermeasures with their matching contracts.
// Expected shape: every target violates its contract; CleanupSpec and
// SpecLFB campaigns are the fastest (clean-cache reset), InvisiSpec is
// slower (conflict-fill priming), and STT is the slowest by far (128-page
// sandbox, taint machinery) with the longest detection time.
func Table4(scale Scale) (*Table4Result, error) {
	out := &Table4Result{
		Table: &Table{
			Title: "Table 4: testing campaigns per defense",
			Header: []string{"Defense", "Contract", "Detected?", "Avg detection",
				"Unique violations", "Throughput (tests/s)", "Campaign time"},
		},
		Reports: map[string]*analysis.Report{},
	}
	for _, spec := range EvaluatedDefenses() {
		ccfg := CampaignConfig(spec, scale)
		res, err := fuzzer.RunCampaign(ccfg)
		if err != nil {
			return nil, err
		}
		unique, firstReport, err := classifyViolations(spec, scale, res)
		if err != nil {
			return nil, err
		}
		if firstReport != nil {
			out.Reports[spec.Name] = firstReport
		}
		detected := "NO"
		if res.DetectedViolation() {
			detected = "YES"
		}
		out.Table.Rows = append(out.Table.Rows, []string{
			spec.Name,
			spec.Contract.Name,
			detected,
			detTime(res),
			fmt.Sprintf("%d", unique),
			fmt.Sprintf("%.0f", res.Throughput()),
			fmtDuration(res.Elapsed),
		})
	}
	out.Table.Notes = append(out.Table.Notes,
		"paper shape: every defense violates its contract; CleanupSpec/SpecLFB fastest, STT slowest")
	return out, nil
}

// classifyViolations analyzes up to a handful of violations per defense
// and counts distinct signatures (the paper's unique-violation counting).
func classifyViolations(spec DefenseSpec, scale Scale, res *fuzzer.CampaignResult) (int, *analysis.Report, error) {
	if len(res.Violations) == 0 {
		return 0, nil, nil
	}
	cfg := CampaignConfig(spec, scale).Base
	exec := executor.New(cfg.Exec, spec.Factory())
	var reports []*analysis.Report
	const maxAnalyzed = 12
	for i, v := range res.Violations {
		if i >= maxAnalyzed {
			break
		}
		rep, err := analysis.Analyze(exec, v)
		if err != nil {
			return 0, nil, err
		}
		reports = append(reports, rep)
	}
	groups := analysis.Dedup(reports)
	return len(groups), reports[0], nil
}

// FigureReports renders the example-violation reports for the given
// defenses (paper Figures 4, 6, 8, 9).
func FigureReports(res *Table4Result, defenses ...string) string {
	if len(defenses) == 0 {
		for _, d := range EvaluatedDefenses() {
			defenses = append(defenses, d.Name)
		}
	}
	var b strings.Builder
	for _, name := range defenses {
		rep, ok := res.Reports[name]
		if !ok {
			fmt.Fprintf(&b, "--- %s: no violation found at this scale ---\n\n", name)
			continue
		}
		b.WriteString(rep.String())
		b.WriteString("\n")
	}
	return b.String()
}
