// Command amulet-worker runs the executing side of a distributed
// AMuLeT-Go campaign: it joins a coordinator (cmd/amulet-coordinator),
// leases work units, runs them on a persistent executor, and submits the
// results. Workers are disposable — kill one at any instant and the
// coordinator reassigns its units with no effect on the final violation
// set.
//
// The campaign flags must match the coordinator's exactly; the join
// handshake refuses mismatches.
//
// The -fault-* flags arm deterministic network-fault injection on this
// worker's transport (CI's distributed smoke runs a worker with
// -fault-drop-every under SIGKILL); they are test instrumentation, not for
// production use.
//
// Exit status: 0 when the campaign completes, 3 when interrupted by
// signal, 1 on failure (unreachable coordinator, eviction budget
// exhausted, severed transport).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"github.com/sith-lab/amulet-go/internal/dist"
	"github.com/sith-lab/amulet-go/internal/faultinject"
	_ "github.com/sith-lab/amulet-go/internal/isa/wasm" // register the stack frontend
)

const exitPartial = 3

func main() {
	fs := flag.CommandLine
	cf := dist.AddCampaignFlags(fs)
	var (
		coordinator = fs.String("coordinator", "http://127.0.0.1:9131", "coordinator base URL")
		name        = fs.String("name", "", "worker name in coordinator logs (default host:pid)")
		leaseMax    = fs.Int("lease-max", 0, "max units per lease request (0 = coordinator's default)")
		dropEvery   = fs.Int("fault-drop-every", 0, "TESTING: drop every n-th RPC response on this worker's transport")
		severAfter  = fs.Int("fault-sever-after", 0, "TESTING: sever this worker's transport after n RPCs")
	)
	flag.Parse()

	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	ecfg, err := cf.EngineConfig()
	if err != nil {
		fatal(err)
	}
	if *dropEvery > 0 || *severAfter > 0 {
		inj := faultinject.New()
		if *dropEvery > 0 {
			inj.ArmDropEvery(*dropEvery)
		}
		if *severAfter > 0 {
			inj.ArmSever(*severAfter)
		}
		ecfg.Inject = inj
	}

	w, err := dist.NewWorker(dist.WorkerConfig{
		Coordinator: *coordinator,
		Name:        *name,
		Campaign:    ecfg,
		LeaseMax:    *leaseMax,
		Log:         log.New(os.Stderr, "", log.Ltime|log.Lmicroseconds),
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err = w.Run(ctx)
	switch {
	case err == nil:
		fmt.Printf("worker %s: campaign complete (%d units run)\n", *name, w.UnitsRun())
	case errors.Is(err, context.Canceled):
		fmt.Printf("worker %s: interrupted (%d units run)\n", *name, w.UnitsRun())
		os.Exit(exitPartial)
	default:
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "amulet-worker:", err)
	os.Exit(1)
}
