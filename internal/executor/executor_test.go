package executor

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/sith-lab/amulet-go/internal/generator"
	"github.com/sith-lab/amulet-go/internal/isa"
	"github.com/sith-lab/amulet-go/internal/uarch"
)

func testConfig(strategy Strategy, prime PrimeMode) Config {
	return Config{
		Core:      uarch.DefaultConfig(),
		Format:    FormatL1DTLB,
		Prime:     prime,
		Strategy:  strategy,
		BootInsts: 200,
	}
}

func genProgram(seed int64) (*isa.Program, isa.Sandbox, *isa.Input, *isa.Input) {
	cfg := generator.DefaultConfig()
	cfg.Seed = seed
	g := generator.New(cfg)
	return g.Program(), g.Sandbox(), g.Input(), g.Input()
}

func TestRunProducesTrace(t *testing.T) {
	prog, sb, in, _ := genProgram(1)
	e := New(testConfig(StrategyOpt, PrimeFill), nil)
	if err := e.LoadProgram(prog, sb); err != nil {
		t.Fatal(err)
	}
	tr, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Format != FormatL1DTLB {
		t.Errorf("format = %v", tr.Format)
	}
	if len(tr.L1D) == 0 {
		t.Errorf("empty L1D snapshot after a primed run")
	}
	if tr.EndCycle == 0 {
		t.Errorf("no end cycle recorded")
	}
}

func TestRunBeforeLoadFails(t *testing.T) {
	e := New(testConfig(StrategyOpt, PrimeFill), nil)
	if _, err := e.Run(isa.NewInput(isa.Sandbox{Pages: 1})); err == nil {
		t.Errorf("Run before LoadProgram succeeded")
	}
}

func TestOptStartsOncePerProgram(t *testing.T) {
	prog, sb, inA, inB := genProgram(2)
	e := New(testConfig(StrategyOpt, PrimeFill), nil)
	if err := e.LoadProgram(prog, sb); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(inA); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(inB); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics().Starts; got != 1 {
		t.Errorf("Opt started the simulator %d times for one program", got)
	}
}

func TestNaiveStartsPerInput(t *testing.T) {
	prog, sb, inA, inB := genProgram(3)
	e := New(testConfig(StrategyNaive, PrimeFill), nil)
	if err := e.LoadProgram(prog, sb); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(inA); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(inB); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics().Starts; got != 2 {
		t.Errorf("Naive started the simulator %d times for two inputs", got)
	}
}

func TestStartupDominatesNaive(t *testing.T) {
	prog, sb, in, _ := genProgram(4)
	cfg := testConfig(StrategyNaive, PrimeFill)
	cfg.BootInsts = DefaultBootInsts
	e := New(cfg, nil)
	if err := e.LoadProgram(prog, sb); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(in); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.Startup <= m.Simulate {
		t.Errorf("Naive startup (%v) should dominate simulation (%v), as in the paper's Table 2",
			m.Startup, m.Simulate)
	}
}

func TestSameInputSameTrace(t *testing.T) {
	prog, sb, in, _ := genProgram(5)
	e := New(testConfig(StrategyNaive, PrimeFill), nil)
	if err := e.LoadProgram(prog, sb); err != nil {
		t.Fatal(err)
	}
	t1, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if !t1.Equal(t2) {
		t.Errorf("identical Naive runs produced different traces:\n%s", t1.Diff(t2))
	}
	if t1.Hash() != t2.Hash() {
		t.Errorf("equal traces must hash equal")
	}
}

func TestValidationPairSymmetricBase(t *testing.T) {
	prog, sb, in, in2 := genProgram(6)
	e := New(testConfig(StrategyOpt, PrimeFill), nil)
	if err := e.LoadProgram(prog, sb); err != nil {
		t.Fatal(err)
	}
	// A pair of identical inputs must always validate as equal.
	trA, trB, err := e.RunValidationPair(in, in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !trA.Equal(trB) {
		t.Errorf("identical inputs differ under validation:\n%s", trA.Diff(trB))
	}
	_ = in2
}

func TestTraceFormats(t *testing.T) {
	// A fixed program with both memory accesses and a branch, so every
	// trace format has content.
	sb := isa.Sandbox{Pages: 1}
	prog := &isa.Program{Insts: []isa.Inst{
		isa.Load(1, 0, 0, 8),
		isa.CmpImm(1, 0),
		isa.Branch(isa.CondNE, 4),
		isa.Store(0, 64, 1, 8),
		isa.Nop(),
	}}
	in := isa.NewInput(sb)
	in.Mem[0] = 1
	for _, format := range []TraceFormat{FormatL1DTLB, FormatL1DTLBL1I, FormatBPState, FormatMemOrder, FormatBranchOrder} {
		cfg := testConfig(StrategyOpt, PrimeFill)
		cfg.Format = format
		e := New(cfg, nil)
		if err := e.LoadProgram(prog, sb); err != nil {
			t.Fatal(err)
		}
		tr, err := e.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		switch format {
		case FormatL1DTLB:
			if len(tr.L1D) == 0 || tr.L1I != nil {
				t.Errorf("%v: wrong sections populated", format)
			}
		case FormatL1DTLBL1I:
			if len(tr.L1I) == 0 {
				t.Errorf("%v: no L1I section", format)
			}
		case FormatBPState:
			if tr.BPDigest == 0 {
				t.Errorf("%v: zero BP digest", format)
			}
		case FormatMemOrder:
			if len(tr.MemOrder) == 0 {
				t.Errorf("%v: empty access order", format)
			}
		case FormatBranchOrder:
			if len(tr.BranchOrder) == 0 {
				t.Errorf("%v: empty branch order", format)
			}
		}
	}
}

// TestIncrementalPrimeMatchesFullPrime runs the same program and inputs
// under the default incremental prime and under Config.FullPrime, for both
// prime modes and with the Opt strategy (so later inputs see exactly the
// state earlier inputs dirtied). Every trace must be identical: the
// incremental prime is a pure constant-factor optimization.
func TestIncrementalPrimeMatchesFullPrime(t *testing.T) {
	for _, mode := range []PrimeMode{PrimeFill, PrimeInvalidate} {
		prog, sb, inA, inB := genProgram(21)
		inputs := []*isa.Input{inA, inB, inA, inB, inA}
		run := func(full bool) []*UTrace {
			cfg := testConfig(StrategyOpt, mode)
			cfg.FullPrime = full
			e := New(cfg, nil)
			if err := e.LoadProgram(prog, sb); err != nil {
				t.Fatal(err)
			}
			var trs []*UTrace
			for _, in := range inputs {
				tr, err := e.Run(in)
				if err != nil {
					t.Fatal(err)
				}
				trs = append(trs, tr)
			}
			return trs
		}
		fullTr, incrTr := run(true), run(false)
		for i := range fullTr {
			if !fullTr[i].Equal(incrTr[i]) {
				t.Errorf("%v input %d: incremental prime diverged from full prime:\n%s",
					mode, i, fullTr[i].Diff(incrTr[i]))
			}
		}
	}
}

// TestMetricsPrimeBucket: priming time is attributed to Metrics.Prime, not
// folded into Simulate, and survives the Add/Minus snapshot accounting.
func TestMetricsPrimeBucket(t *testing.T) {
	prog, sb, in, _ := genProgram(22)
	e := New(testConfig(StrategyOpt, PrimeFill), nil)
	if err := e.LoadProgram(prog, sb); err != nil {
		t.Fatal(err)
	}
	before := e.Metrics()
	for i := 0; i < 3; i++ {
		if _, err := e.Run(in); err != nil {
			t.Fatal(err)
		}
	}
	m := e.Metrics().Minus(before)
	if m.Prime <= 0 {
		t.Errorf("PrimeFill runs recorded no Prime time: %+v", m)
	}
	if m.Simulate <= 0 {
		t.Errorf("no Simulate time recorded: %+v", m)
	}
	var sum Metrics
	sum.Add(before)
	sum.Add(m)
	if sum.Prime != e.Metrics().Prime {
		t.Errorf("Add/Minus round trip lost Prime time")
	}
}

// TestBootWithoutProgramLeavesDefinedState: a boot that runs while no test
// program is loaded must not leave the boot program and its sandbox mapped
// — the core ends in a defined empty state and a later LoadProgram works
// from scratch.
func TestBootWithoutProgramLeavesDefinedState(t *testing.T) {
	e := New(testConfig(StrategyOpt, PrimeFill), nil)
	if err := e.startup(); err != nil { // boots with e.prog == nil
		t.Fatal(err)
	}
	if e.core.Program() != nil {
		t.Fatalf("boot program left loaded after a no-program startup")
	}
	if _, err := e.Run(isa.NewInput(isa.Sandbox{Pages: 1})); err == nil {
		t.Fatalf("Run succeeded against the leaked boot state")
	}
	prog, sb, in, _ := genProgram(23)
	if err := e.LoadProgram(prog, sb); err != nil {
		t.Fatal(err)
	}
	tr, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.L1D) == 0 {
		t.Errorf("post-recovery run produced an empty trace")
	}
}

func TestPrimeModesDiffer(t *testing.T) {
	prog, sb, in, _ := genProgram(8)
	runWith := func(p PrimeMode) *UTrace {
		e := New(testConfig(StrategyNaive, p), nil)
		if err := e.LoadProgram(prog, sb); err != nil {
			t.Fatal(err)
		}
		tr, err := e.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	fill := runWith(PrimeFill)
	inval := runWith(PrimeInvalidate)
	// A primed cache holds conflict lines; a clean one holds only what the
	// test touched.
	if len(fill.L1D) <= len(inval.L1D) {
		t.Errorf("primed snapshot (%d lines) not larger than clean snapshot (%d lines)",
			len(fill.L1D), len(inval.L1D))
	}
}

func TestUTraceDiffRendering(t *testing.T) {
	a := &UTrace{L1D: []uint64{0x100, 0x200}, TLB: []uint64{1}}
	b := &UTrace{L1D: []uint64{0x100, 0x300}, TLB: []uint64{2}}
	d := a.Diff(b)
	for _, want := range []string{"0x200", "0x300", "L1D-cache tags", "D-TLB pages"} {
		if !strings.Contains(d, want) {
			t.Errorf("diff missing %q:\n%s", want, d)
		}
	}
	if a.Diff(a) != "traces identical\n" {
		t.Errorf("self-diff not identical")
	}
}

// TestUTraceHashEqualProperty: Equal traces hash equal; single-element
// perturbations break equality.
func TestUTraceHashEqualProperty(t *testing.T) {
	prop := func(l1d []uint64, tlb []uint64, bp uint64) bool {
		a := &UTrace{L1D: append([]uint64(nil), l1d...), TLB: append([]uint64(nil), tlb...), BPDigest: bp}
		b := &UTrace{L1D: append([]uint64(nil), l1d...), TLB: append([]uint64(nil), tlb...), BPDigest: bp}
		if !a.Equal(b) || a.Hash() != b.Hash() {
			return false
		}
		if len(l1d) > 0 {
			b.L1D[0]++
			if a.Equal(b) {
				return false
			}
			b.L1D[0]--
		}
		b.BPDigest++
		return !a.Equal(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestValidationPairDeterministic: RunValidationPair is reproducible for
// the same inputs and program (the analysis layer depends on this when it
// replays with logging enabled).
func TestValidationPairDeterministic(t *testing.T) {
	prog, sb, a, b := genProgram(11)
	e := New(testConfig(StrategyOpt, PrimeFill), nil)
	if err := e.LoadProgram(prog, sb); err != nil {
		t.Fatal(err)
	}
	a1, b1, err := e.RunValidationPair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// A second executor, same config: identical outcome.
	e2 := New(testConfig(StrategyOpt, PrimeFill), nil)
	if err := e2.LoadProgram(prog, sb); err != nil {
		t.Fatal(err)
	}
	a2, b2, err := e2.RunValidationPair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Equal(a2) || !b1.Equal(b2) {
		t.Errorf("validation pair not reproducible across executors")
	}
}

// TestCoverageCollection: an executor built with Coverage records features
// while running inputs, ResetCoverage clears them, and the boot workload
// contributes nothing (its features are constant noise).
func TestCoverageCollection(t *testing.T) {
	prog, sb, inA, inB := genProgram(3)
	cfg := testConfig(StrategyOpt, PrimeFill)
	cfg.Coverage = true
	e := New(cfg, nil)
	if e.Coverage() == nil {
		t.Fatalf("coverage-enabled executor returned a nil map")
	}
	if err := e.LoadProgram(prog, sb); err != nil {
		t.Fatal(err)
	}
	// LoadProgram under Opt simulates the boot workload; with boot features
	// suppressed the map must still be empty here.
	if !e.Coverage().Empty() {
		t.Errorf("boot workload leaked %d coverage features", e.Coverage().Count())
	}
	if _, err := e.Run(inA); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(inB); err != nil {
		t.Fatal(err)
	}
	if e.Coverage().Empty() {
		t.Errorf("no coverage recorded after two runs")
	}
	e.ResetCoverage()
	if !e.Coverage().Empty() {
		t.Errorf("ResetCoverage left features behind")
	}
}

// TestCoverageDisabledReturnsNil: the default configuration collects
// nothing and exposes no map.
func TestCoverageDisabledReturnsNil(t *testing.T) {
	e := New(testConfig(StrategyOpt, PrimeFill), nil)
	if e.Coverage() != nil {
		t.Errorf("coverage map present without Config.Coverage")
	}
	e.ResetCoverage() // must be a no-op, not a panic
}

// TestCoverageDeterministicAcrossExecutors: two executors running the same
// program and inputs from fresh boots record identical feature sets — the
// unit-level property engine determinism relies on.
func TestCoverageDeterministicAcrossExecutors(t *testing.T) {
	prog, sb, inA, inB := genProgram(9)
	run := func() uint64 {
		cfg := testConfig(StrategyOpt, PrimeFill)
		cfg.Coverage = true
		e := New(cfg, nil)
		e.EnableBootCheckpoint()
		if err := e.LoadProgram(prog, sb); err != nil {
			t.Fatal(err)
		}
		for _, in := range []*isa.Input{inA, inB} {
			if _, err := e.Run(in); err != nil {
				t.Fatal(err)
			}
		}
		return e.Coverage().Digest()
	}
	if run() != run() {
		t.Errorf("identical executions recorded different coverage")
	}
}
