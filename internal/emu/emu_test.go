package emu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/sith-lab/amulet-go/internal/isa"
)

func run(t *testing.T, insts []isa.Inst, in *isa.Input, pages int) *Machine {
	t.Helper()
	sb := isa.Sandbox{Pages: pages}
	p := &isa.Program{Insts: insts}
	if err := p.Validate(); err != nil {
		t.Fatalf("bad test program: %v", err)
	}
	m := New(p, sb, in)
	if err := m.Run(10000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func TestStraightLineALU(t *testing.T) {
	in := isa.NewInput(isa.Sandbox{Pages: 1})
	m := run(t, []isa.Inst{
		isa.MovImm(1, 10),
		isa.ALUImm(isa.OpAdd, 2, 1, 5),
		isa.ALU(isa.OpMul, 3, 2, 2),
	}, in, 1)
	if m.Regs[1] != 10 || m.Regs[2] != 15 || m.Regs[3] != 225 {
		t.Errorf("regs = %v", m.Regs[:4])
	}
}

func TestLoadStore(t *testing.T) {
	in := isa.NewInput(isa.Sandbox{Pages: 1})
	m := run(t, []isa.Inst{
		isa.MovImm(1, 0xabcd),
		isa.Store(0, 64, 1, 2),
		isa.Load(2, 0, 64, 2),
		isa.Load(3, 0, 64, 1),
	}, in, 1)
	if m.Regs[2] != 0xabcd {
		t.Errorf("R2 = %#x, want 0xabcd", m.Regs[2])
	}
	if m.Regs[3] != 0xcd {
		t.Errorf("R3 = %#x, want 0xcd (one byte)", m.Regs[3])
	}
}

func TestBranchTakenAndNot(t *testing.T) {
	in := isa.NewInput(isa.Sandbox{Pages: 1})
	m := run(t, []isa.Inst{
		isa.CmpImm(0, 0), // R0=0 -> equal
		isa.Branch(isa.CondEQ, 4),
		isa.MovImm(1, 111), // skipped
		isa.Nop(),
		isa.MovImm(2, 222),
	}, in, 1)
	if m.Regs[1] != 0 || m.Regs[2] != 222 {
		t.Errorf("taken branch executed fallthrough: regs=%v", m.Regs[:3])
	}

	m = run(t, []isa.Inst{
		isa.CmpImm(0, 1), // R0=0 -> not equal
		isa.Branch(isa.CondEQ, 4),
		isa.MovImm(1, 111),
		isa.Nop(),
		isa.MovImm(2, 222),
	}, in, 1)
	if m.Regs[1] != 111 {
		t.Errorf("not-taken branch skipped fallthrough")
	}
}

func TestJmpSkips(t *testing.T) {
	in := isa.NewInput(isa.Sandbox{Pages: 1})
	m := run(t, []isa.Inst{
		isa.Jmp(2),
		isa.MovImm(1, 1),
		isa.MovImm(2, 2),
	}, in, 1)
	if m.Regs[1] != 0 || m.Regs[2] != 2 {
		t.Errorf("JMP wrong: regs=%v", m.Regs[:3])
	}
}

func TestHooksFire(t *testing.T) {
	sb := isa.Sandbox{Pages: 1}
	in := isa.NewInput(sb)
	p := &isa.Program{Insts: []isa.Inst{
		isa.MovImm(1, 0x11),
		isa.Store(0, 8, 1, 8),
		isa.Load(2, 0, 8, 8),
		isa.CmpImm(2, 0),
		isa.Branch(isa.CondNE, 6),
		isa.Nop(),
	}}
	m := New(p, sb, in)
	var pcs, loads, stores, branches int
	var loadVal uint64
	m.Hooks = Hooks{
		OnPC:     func(uint64) { pcs++ },
		OnLoad:   func(_, _ uint64, _ uint8, v uint64) { loads++; loadVal = v },
		OnStore:  func(_, _ uint64, _ uint8, _ uint64) { stores++ },
		OnBranch: func(_ uint64, taken bool, _ uint64) { branches++; _ = taken },
	}
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if pcs != 5 || loads != 1 || stores != 1 || branches != 1 {
		t.Errorf("hook counts: pc=%d ld=%d st=%d br=%d", pcs, loads, stores, branches)
	}
	if loadVal != 0x11 {
		t.Errorf("load hook value = %#x", loadVal)
	}
}

func TestCheckpointRollbackRegisters(t *testing.T) {
	sb := isa.Sandbox{Pages: 1}
	m := New(&isa.Program{Insts: []isa.Inst{
		isa.MovImm(1, 1),
		isa.MovImm(1, 2),
	}}, sb, isa.NewInput(sb))
	m.Step()
	m.Checkpoint()
	m.Step()
	if m.Regs[1] != 2 {
		t.Fatalf("R1 = %d before rollback", m.Regs[1])
	}
	m.Rollback()
	if m.Regs[1] != 1 || m.PCIdx != 1 {
		t.Errorf("rollback did not restore state: R1=%d PC=%d", m.Regs[1], m.PCIdx)
	}
}

func TestCheckpointRollbackMemoryNested(t *testing.T) {
	sb := isa.Sandbox{Pages: 1}
	p := &isa.Program{Insts: []isa.Inst{
		isa.MovImm(1, 0xaa),
		isa.Store(0, 0, 1, 1),
		isa.MovImm(1, 0xbb),
		isa.Store(0, 0, 1, 1),
		isa.MovImm(1, 0xcc),
		isa.Store(0, 1, 1, 1),
	}}
	m := New(p, sb, isa.NewInput(sb))
	m.Step()
	m.Step() // mem[0] = 0xaa (not journaled, no checkpoint)
	m.Checkpoint()
	m.Step()
	m.Step() // mem[0] = 0xbb (journaled)
	m.Checkpoint()
	m.Step()
	m.Step() // mem[1] = 0xcc (journaled, inner)
	if m.SpecDepth() != 2 {
		t.Fatalf("depth = %d", m.SpecDepth())
	}
	m.Rollback()
	if m.Mem.Read(isa.DataBase+1, 1) != 0 {
		t.Errorf("inner rollback did not undo mem[1]")
	}
	if m.Mem.Read(isa.DataBase, 1) != 0xbb {
		t.Errorf("inner rollback undid too much")
	}
	m.Rollback()
	if m.Mem.Read(isa.DataBase, 1) != 0xaa {
		t.Errorf("outer rollback did not restore mem[0]=0xaa, got %#x", m.Mem.Read(isa.DataBase, 1))
	}
}

func TestRollbackWithoutCheckpointPanics(t *testing.T) {
	sb := isa.Sandbox{Pages: 1}
	m := New(&isa.Program{}, sb, isa.NewInput(sb))
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	m.Rollback()
}

func TestStepLimit(t *testing.T) {
	// A long straight-line program with a tiny budget.
	insts := make([]isa.Inst, 100)
	for i := range insts {
		insts[i] = isa.Nop()
	}
	sb := isa.Sandbox{Pages: 1}
	m := New(&isa.Program{Insts: insts}, sb, isa.NewInput(sb))
	if err := m.Run(10); err != ErrStepLimit {
		t.Errorf("Run = %v, want ErrStepLimit", err)
	}
}

func TestLoadInputResets(t *testing.T) {
	sb := isa.Sandbox{Pages: 1}
	p := &isa.Program{Insts: []isa.Inst{isa.MovImm(1, 7), isa.Store(0, 0, 1, 8)}}
	m := New(p, sb, isa.NewInput(sb))
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	in2 := isa.NewInput(sb)
	in2.Regs[2] = 99
	m.LoadInput(in2)
	if m.PCIdx != 0 || m.Regs[1] != 0 || m.Regs[2] != 99 || m.Steps() != 0 {
		t.Errorf("LoadInput did not reset")
	}
	if m.Mem.Read(isa.DataBase, 8) != 0 {
		t.Errorf("LoadInput did not reset memory")
	}
}

// TestCheckpointRollbackProperty: after an arbitrary run prefix, a
// checkpoint/execute/rollback cycle restores the full architectural state.
func TestCheckpointRollbackProperty(t *testing.T) {
	sb := isa.Sandbox{Pages: 1}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		insts := randomStraightLine(rng, 30)
		p := &isa.Program{Insts: insts}
		in := isa.NewInput(sb)
		for i := range in.Regs {
			in.Regs[i] = rng.Uint64()
		}
		rng.Read(in.Mem)
		m := New(p, sb, in)
		for i := 0; i < 10 && !m.Done(); i++ {
			m.Step()
		}
		regs, flags, pc := m.Regs, m.Flags, m.PCIdx
		memBefore := append([]byte(nil), m.Mem.Bytes()...)
		m.Checkpoint()
		for i := 0; i < 15 && !m.Done(); i++ {
			m.Step()
		}
		m.Rollback()
		if m.Regs != regs || m.Flags != flags || m.PCIdx != pc {
			return false
		}
		for i, b := range m.Mem.Bytes() {
			if b != memBefore[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomStraightLine builds a random branch-free instruction sequence.
func randomStraightLine(rng *rand.Rand, n int) []isa.Inst {
	insts := make([]isa.Inst, n)
	for i := range insts {
		switch rng.Intn(5) {
		case 0:
			insts[i] = isa.MovImm(isa.Reg(rng.Intn(16)), int64(rng.Uint64()>>8))
		case 1:
			insts[i] = isa.ALU(isa.OpAdd, isa.Reg(rng.Intn(16)), isa.Reg(rng.Intn(16)), isa.Reg(rng.Intn(16)))
		case 2:
			insts[i] = isa.Load(isa.Reg(rng.Intn(16)), isa.Reg(rng.Intn(16)), int64(rng.Intn(4096)), 8)
		case 3:
			insts[i] = isa.Store(isa.Reg(rng.Intn(16)), int64(rng.Intn(4096)), isa.Reg(rng.Intn(16)), 8)
		case 4:
			insts[i] = isa.CmpImm(isa.Reg(rng.Intn(16)), int64(rng.Intn(256)))
		}
	}
	return insts
}
