package wasm_test

import (
	"testing"

	"github.com/sith-lab/amulet-go/internal/contract"
	"github.com/sith-lab/amulet-go/internal/defense/fenceall"
	"github.com/sith-lab/amulet-go/internal/isa"
	"github.com/sith-lab/amulet-go/internal/isa/wasm"
	"github.com/sith-lab/amulet-go/internal/testgadget"
	"github.com/sith-lab/amulet-go/internal/uarch"
)

// gadgetInput builds the gadget's input: an out-of-bounds idx, the bound in
// memory, and the secret byte at mem[idx]. Everything except the secret is
// identical across inputs, which is what makes the pair contract-equivalent.
func gadgetInput(sb isa.Sandbox, secret byte) *isa.Input {
	in := isa.NewInput(sb)
	in.Regs[0] = 200 // idx, architecturally out of bounds
	in.Regs[1] = 128 // &bound
	in.Mem[128] = 64 // bound
	in.Mem[200] = secret
	return in
}

// TestSpectreV1GadgetLeaksOnBaseline instantiates Definition 2.1 on the
// stack frontend's shipped gadget: two inputs that differ only in the
// secret byte produce identical CT-SEQ contract traces (the out-of-bounds
// branch architecturally skips both loads), yet the unprotected core
// installs a secret-selected cache line transiently — differing µarch
// traces, a contract violation. The same pair under fenceall (speculation
// fully drained) shows identical cache states: the stack-machine leak is a
// baseline property, not a lowering artifact.
func TestSpectreV1GadgetLeaksOnBaseline(t *testing.T) {
	sb := isa.Sandbox{Pages: 1}
	prog := wasm.SpectreV1Gadget().Lowered()
	// Secrets are chosen so their encoded lines (secret*64) collide with
	// neither the bound's line (addr 128) nor each other.
	inA, inB := gadgetInput(sb, 10), gadgetInput(sb, 60)
	lineA, lineB := uint64(10<<6), uint64(60<<6) // secret-selected lines

	// The pair is contract-equivalent under CT-SEQ: same architectural
	// trace, so a µarch difference is a violation by definition.
	model := contract.NewModel(contract.CTSeq, prog, sb)
	got, _ := model.Collect(inA)
	trA := append(contract.Trace(nil), got...) // the model owns its buffer
	trB, _ := model.Collect(inB)
	if !trA.Equal(trB) {
		t.Fatalf("gadget inputs are not contract-equivalent:\nA: %v\nB: %v", trA, trB)
	}

	core := uarch.NewCore(uarch.DefaultConfig(), nil)
	snapA := testgadget.Run(core, prog, sb, inA, testgadget.PrimeInvalidate)
	snapB := testgadget.Run(core, prog, sb, inB, testgadget.PrimeInvalidate)
	if snapA.Stats.Mispredicts == 0 {
		t.Fatalf("gadget did not mispredict; stats: %+v", snapA.Stats)
	}
	if !snapA.HasLine(testgadget.SandboxAddr(lineA)) {
		t.Errorf("baseline input A: transient line %#x not installed; L1D=%#x", lineA, snapA.L1D)
	}
	if !snapB.HasLine(testgadget.SandboxAddr(lineB)) {
		t.Errorf("baseline input B: transient line %#x not installed; L1D=%#x", lineB, snapB.L1D)
	}
	if snapA.EqualCaches(snapB) {
		t.Errorf("baseline: expected differing cache states (Spectre-v1 leak), both=%#x", snapA.L1D)
	}

	// fenceall drains speculation at every instruction: the same pair must
	// leave identical µarch state.
	fcore := uarch.NewCore(uarch.DefaultConfig(), fenceall.New())
	fsnapA := testgadget.Run(fcore, prog, sb, inA, testgadget.PrimeInvalidate)
	fsnapB := testgadget.Run(fcore, prog, sb, inB, testgadget.PrimeInvalidate)
	if !fsnapA.EqualCaches(fsnapB) || !fsnapA.EqualTLB(fsnapB) {
		t.Errorf("fenceall: cache states differ — the sound defense leaks:\nA=%#x\nB=%#x",
			fsnapA.L1D, fsnapB.L1D)
	}
	if fsnapA.HasLine(testgadget.SandboxAddr(lineA)) || fsnapB.HasLine(testgadget.SandboxAddr(lineB)) {
		t.Errorf("fenceall: secret-selected line installed despite drained speculation")
	}
}
